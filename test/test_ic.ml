(* Tests for type feedback: interpreter inline caches with bytecode
   quickening, class-hierarchy invalidation of both the caches and the
   CHA memos, and speculative devirtualization in the JIT — including a
   dispatch-changing method definition racing an in-flight background
   compile, which must never install the speculated code. *)

open Vm
open Vm.Types

let value = Alcotest.testable Vm.Value.pp Vm.Value.equal
let check_value = Alcotest.check value
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let quiet = Some (fun (_ : string) -> ())

let await ?(what = "condition") p =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (p ())) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  if not (p ()) then Alcotest.failf "timed out waiting for %s" what

(* The single quickened site belonging to [driver]. *)
let driver_site rt (driver : meth) =
  match
    Hashtbl.fold
      (fun _ (s : callsite) acc ->
        if s.cs_mid = driver.mid then Some s else acc)
      rt.ic_sites None
  with
  | Some s -> s
  | None -> Alcotest.fail "call site did not quicken"

(* ------------------------------------------------------------------ *)
(* mono -> poly -> mega transitions, quickening in place, rendering.    *)

let test_transitions () =
  let rt = Natives.boot () in
  let base = Classfile.declare_class rt ~name:"IcBase" ~fields:[] () in
  ignore
    (Assembler.define_method rt base ~name:"tag" ~nargs:0 (fun b ->
         Assembler.emit b (Const (Int 0));
         Assembler.emit b Retv));
  let subs =
    List.init 5 (fun i ->
        let c =
          Classfile.declare_class rt
            ~name:(Printf.sprintf "IcSub%d" i)
            ~super:"IcBase" ~fields:[] ()
        in
        ignore
          (Assembler.define_method rt c ~name:"tag" ~nargs:0 (fun b ->
               Assembler.emit b (Const (Int (i + 1)));
               Assembler.emit b Retv));
        c)
  in
  let scratch = Classfile.declare_class rt ~name:"IcDrv" ~fields:[] () in
  let driver =
    Assembler.define_method rt scratch ~name:"call" ~static:true ~nargs:1
      (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Invoke (Virtual ("tag", 0, None)));
        Assembler.emit b Retv)
  in
  let call c = Interp.call rt driver [| Obj (Runtime.alloc rt c) |] in
  check_value "first call" (Int 1) (call (List.nth subs 0));
  let site = driver_site rt driver in
  check_string "monomorphic after one class" "mono:IcSub0"
    (Inlinecache.state_string site);
  (match driver.mcode with
  | Bytecode code ->
    check_bool "invoke quickened in place" true
      (Array.exists
         (function Invoke (Virtual_ic _) -> true | _ -> false)
         code)
  | Native _ -> Alcotest.fail "expected bytecode");
  check_value "mono hit" (Int 1) (call (List.nth subs 0));
  check_int "hit counted" 1 site.cs_hits;
  check_value "second class" (Int 2) (call (List.nth subs 1));
  check_string "polymorphic after two" "poly:{IcSub0,IcSub1}"
    (Inlinecache.state_string site);
  check_value "poly hit" (Int 2) (call (List.nth subs 1));
  check_int "poly hits counted" 2 site.cs_hits;
  (* five distinct receiver classes blow past poly_limit = 4 *)
  List.iteri (fun i c -> check_value "chain" (Int (i + 1)) (call c)) subs;
  check_string "megamorphic after five" "mega" (Inlinecache.state_string site);
  check_value "mega still dispatches correctly" (Int 0) (call base);
  check_bool "disasm renders the site state" true
    (Strutil.contains (Disasm.method_to_string driver) "[mega]");
  let hits, misses, mono, poly, mega = Runtime.ic_stats rt in
  check_bool "stats: hits" true (hits >= 3);
  check_bool "stats: misses" true (misses >= 5);
  check_int "stats: site counts" 1 (mono + poly + mega)

(* ------------------------------------------------------------------ *)
(* Quickened and unquickened interpreters agree on a polymorphic
   workload, and both agree with the tiered (compiled) configuration.   *)

let poly_src =
  {|
class Shape {
  var k: int
  def init(k: int): unit = { this.k = k }
  def area(): int = 0
}
class Square extends Shape {
  def area(): int = this.k * this.k
}
class Circle extends Shape {
  def area(): int = 3 * this.k * this.k
}
def pick(i: int): Shape = {
  var s: Shape = new Shape(i % 5);
  if (i % 3 < 2) { s = new Square(i % 5) };
  if (i % 3 < 1) { s = new Circle(i % 5) };
  s
}
def total(n: int): int = {
  var acc = 0;
  var i = 0;
  while (i < n) {
    acc = acc + pick(i).area();
    i = i + 1
  };
  acc
}
|}

let test_quickened_equivalence () =
  let run rt = Mini.Front.call (Mini.Front.load rt poly_src) "total" [| Int 200 |] in
  let rt_on = Lancet.Api.boot () in
  let rt_off = Lancet.Api.boot ~inline_caches:false () in
  let rt_tiered = Lancet.Api.boot ~tiering:true ~tier_threshold:8 () in
  let v_on = run rt_on in
  check_value "ic off matches ic on" v_on (run rt_off);
  check_value "tiered matches interpreter" v_on (run rt_tiered);
  let hits, _, mono, poly, mega = Runtime.ic_stats rt_on in
  check_bool "caches were hit" true (hits > 0);
  check_bool "sites quickened" true (mono + poly + mega > 0);
  check_int "no sites without inline caches" 0 (Hashtbl.length rt_off.ic_sites)

(* ------------------------------------------------------------------ *)
(* Late redefinition after a speculative compile (synchronous tiering):
   the installed code direct-called the old target, so [add_method] must
   invalidate it through the devirtualization dependency and the next
   call must see the new behavior.                                      *)

let redefine_src =
  {|
class Pt {
  var x: int
  def init(x: int): unit = { this.x = x }
  def m(): int = this.x + 1
}
def driver(p: Pt, n: int): int = {
  var acc = 0;
  var i = 0;
  while (i < n) { acc = acc + p.m(); i = i + 1 };
  acc
}
def mk(x: int): Pt = new Pt(x)
|}

let test_late_redefine_sync () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let p = Mini.Front.load rt redefine_src in
  let driver = Mini.Front.find_function p "driver" in
  let o = Mini.Front.call p "mk" [| Int 5 |] in
  for _ = 1 to 4 do
    check_value "trained" (Int 60) (Mini.Front.call p "driver" [| o; Int 10 |])
  done;
  check_bool "driver compiled with speculation" true
    (match driver.mtier with Tier_compiled _ -> true | _ -> false);
  let gen0 = Vm.Runtime.tier_gen rt driver.mid in
  (* redefine Pt.m out from under the compiled direct call *)
  let pt = Classfile.find_class rt "Pt" in
  let fx = Classfile.field pt "x" in
  ignore
    (Assembler.define_method rt pt ~name:"m" ~nargs:0 (fun b ->
         Assembler.emit b (Load 0);
         Assembler.emit b (Getfield fx);
         Assembler.emit b (Const (Int 100));
         Assembler.emit b (Iop Add);
         Assembler.emit b Retv));
  check_bool "dependency invalidation bumped the generation" true
    (Vm.Runtime.tier_gen rt driver.mid > gen0);
  (* the very first call after the redefinition must see the new method *)
  check_value "new dispatch target visible immediately" (Int 1050)
    (Mini.Front.call p "driver" [| o; Int 10 |]);
  (* and keeps being right once the method re-promotes and recompiles *)
  for _ = 1 to 6 do
    check_value "stable after recompile" (Int 1050)
      (Mini.Front.call p "driver" [| o; Int 10 |])
  done

(* ------------------------------------------------------------------ *)
(* A mono-speculated guard that fails at run time deopts to the
   interpreter (never a wrong answer), and repeated failures invalidate
   so the method recompiles against the retrained (now poly) profile.   *)

let guard_src =
  {|
class A2 {
  var x: int
  def init(x: int): unit = { this.x = x }
  def m(): int = 1
}
class B2 extends A2 {
  def m(): int = 2
}
def driver2(a: A2, n: int): int = {
  var acc = 0;
  var i = 0;
  while (i < n) { acc = acc + a.m(); i = i + 1 };
  acc
}
def mkA(): A2 = new A2(0)
def mkB(): A2 = new B2(0)
|}

let test_guard_fail_deopts () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let p = Mini.Front.load rt guard_src in
  let driver = Mini.Front.find_function p "driver2" in
  let a = Mini.Front.call p "mkA" [||] in
  let b = Mini.Front.call p "mkB" [||] in
  (* train monomorphically on A2 until compiled: B2 overrides m, so CHA
     cannot prove the call and the compile must guard on the IC profile *)
  for _ = 1 to 4 do
    check_value "trained" (Int 10) (Mini.Front.call p "driver2" [| a; Int 10 |])
  done;
  check_bool "compiled against the mono profile" true
    (match driver.mtier with Tier_compiled _ -> true | _ -> false);
  let deopts0 = rt.tiering.t_deopts in
  (* an off-profile receiver: the class-id guard fails, the side exit
     resumes the interpreter at the invoke, and the answer is right *)
  check_value "guard failure never yields a wrong result" (Int 20)
    (Mini.Front.call p "driver2" [| b; Int 10 |]);
  check_bool "the miss deoptimized" true (rt.tiering.t_deopts > deopts0);
  (* keep missing: the entry invalidates and recompiles poly; every call
     stays correct throughout *)
  for _ = 1 to 6 do
    check_value "B2 stays correct" (Int 20)
      (Mini.Front.call p "driver2" [| b; Int 10 |]);
    check_value "A2 stays correct" (Int 10)
      (Mini.Front.call p "driver2" [| a; Int 10 |])
  done

(* ------------------------------------------------------------------ *)
(* A dispatch-changing definition racing an in-flight background
   compile: the worker finished building speculative code against the
   old hierarchy, so the epoch-checked install must discard it.         *)

let bg_src =
  {|
class P3 {
  var x: int
  def init(x: int): unit = { this.x = x }
  def m(): int = this.x + 1
}
def driver3(p: P3, n: int): int = {
  var acc = 0;
  var i = 0;
  while (i < n) { acc = acc + p.m(); i = i + 1 };
  acc
}
def mk3(x: int): P3 = new P3(x)
|}

let test_bg_inflight_override () =
  (* threshold high enough that nothing promotes organically: the test
     drives the queue by hand, like the bgjit stale-install test *)
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:1_000_000 () in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let pool =
    Bgjit.create ~threads:1 ?log:quiet
      ~compile:(fun rt m ->
        (* build for real first — speculating on the trained IC — then
           stall so the mutator can mutate the hierarchy pre-install *)
        let r = Lancet.Tiering.compile rt m in
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        r)
      rt
  in
  let p = Mini.Front.load rt bg_src in
  let driver = Mini.Front.find_function p "driver3" in
  let o = Mini.Front.call p "mk3" [| Int 5 |] in
  (* train the site so the compile has a profile to speculate on *)
  for _ = 1 to 3 do
    check_value "trained" (Int 60) (Mini.Front.call p "driver3" [| o; Int 10 |])
  done;
  let epoch0 = Vm.Runtime.hier_epoch rt in
  check_bool "queued" true (Bgjit.enqueue pool driver = `Queued);
  await ~what:"background compile to finish building" (fun () ->
      Atomic.get started);
  (* the hierarchy mutation lands while the code sits unpublished *)
  let p3 = Classfile.find_class rt "P3" in
  ignore
    (Assembler.define_method rt p3 ~name:"m" ~nargs:0 (fun b ->
         Assembler.emit b (Const (Int 100));
         Assembler.emit b Retv));
  check_bool "epoch advanced" true (Vm.Runtime.hier_epoch rt > epoch0);
  Atomic.set release true;
  Bgjit.drain pool;
  Bgjit.shutdown pool;
  let s = Bgjit.stats pool in
  check_int "speculated code discarded as stale" 1 s.Bgjit.s_stale;
  check_int "nothing installed" 0 s.Bgjit.s_installed;
  check_bool "stale code not in the cache" false
    (Hashtbl.mem rt.tiering.t_cache driver.mid);
  check_value "correct against the new hierarchy" (Int 1000)
    (Mini.Front.call p "driver3" [| o; Int 10 |])

(* ------------------------------------------------------------------ *)
(* The CHA memos: [no_override_below] answers are cached and a later
   override drops them; [resolve_virtual_opt] memoizes inherited lookups
   into the subclass vtable and the override replaces them.             *)

let test_cha_caches () =
  let rt = Natives.boot () in
  let base = Classfile.declare_class rt ~name:"ChaA" ~fields:[] () in
  ignore
    (Assembler.define_method rt base ~name:"f" ~nargs:0 (fun b ->
         Assembler.emit b (Const (Int 1));
         Assembler.emit b Retv));
  let sub = Classfile.declare_class rt ~name:"ChaB" ~super:"ChaA" ~fields:[] () in
  check_bool "no override yet" true (Classfile.no_override_below rt base "f");
  check_bool "answer cached" true
    (Hashtbl.mem rt.cha_cache (base.cid, "f"));
  (match Classfile.resolve_virtual_opt sub "f" with
  | Some m -> check_bool "resolves to the inherited method" true (m.mowner == base)
  | None -> Alcotest.fail "resolve_virtual_opt failed");
  check_bool "inherited lookup memoized into subclass vtable" true
    (Hashtbl.mem sub.cvtable "f");
  ignore
    (Assembler.define_method rt sub ~name:"f" ~nargs:0 (fun b ->
         Assembler.emit b (Const (Int 2));
         Assembler.emit b Retv));
  check_bool "override flips the CHA answer" false
    (Classfile.no_override_below rt base "f");
  (match Classfile.resolve_virtual_opt sub "f" with
  | Some m -> check_bool "resolves to the override" true (m.mowner == sub)
  | None -> Alcotest.fail "resolve_virtual_opt failed");
  (* dispatch through the interpreter agrees *)
  let scratch = Classfile.declare_class rt ~name:"ChaDrv" ~fields:[] () in
  let call =
    Assembler.define_method rt scratch ~name:"call" ~static:true ~nargs:1
      (fun b ->
        Assembler.emit b (Load 0);
        Assembler.emit b (Invoke (Virtual ("f", 0, None)));
        Assembler.emit b Retv)
  in
  check_value "base" (Int 1) (Interp.call rt call [| Obj (Runtime.alloc rt base) |]);
  check_value "override" (Int 2) (Interp.call rt call [| Obj (Runtime.alloc rt sub) |])

let suite =
  [
    Alcotest.test_case "ic-transitions" `Quick test_transitions;
    Alcotest.test_case "quickened-equivalence" `Quick test_quickened_equivalence;
    Alcotest.test_case "late-redefine-sync" `Quick test_late_redefine_sync;
    Alcotest.test_case "guard-fail-deopt" `Quick test_guard_fail_deopts;
    Alcotest.test_case "bg-inflight-override" `Quick test_bg_inflight_override;
    Alcotest.test_case "cha-caches" `Quick test_cha_caches;
  ]
