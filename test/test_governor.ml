(* Tests for the self-healing governor: the deopt-loop circuit breaker
   (demote -> exponential-backoff re-promotion -> permanent blacklist),
   the compile watchdog (stalled compile abandoned via the generation
   stamp, retried once, then blacklisted), queue backpressure and
   eviction damping on the promotion threshold, bounded pool shutdown,
   and the eviction/re-promotion round trip under cache pressure. *)

open Vm.Types
module G = Lancet.Governor

let value = Alcotest.testable Vm.Value.pp Vm.Value.equal
let check_value = Alcotest.check value
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let quiet = Some (fun (_ : string) -> ())

let await ?(what = "condition") p =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (p ())) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  if not (p ()) then Alcotest.failf "timed out waiting for %s" what

let hot_src =
  {|
def hot(n: int, seed: int): int = {
  var acc = seed;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

(* ------------------------------------------------------------------ *)
(* Deopt-loop circuit breaker: K strikes on one guard demote the method
   behind an exponential hotness bar; exhausted backoff blacklists it.
   Results must track the interpreter at every step.                    *)

let spec_src =
  {|
def spec(x: int): int =
  if (Lancet.speculate(x < 100000)) x * 3 + 1 else x - 7
|}

let test_circuit_breaker () =
  Forensics.enable ();
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let gov =
    G.attach
      ~cfg:{ G.default_config with G.g_deopt_k = 2; G.g_max_backoff = 1 }
      rt
  in
  let p = Mini.Front.load rt spec_src in
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain spec_src in
  let chk x =
    check_value
      (Printf.sprintf "spec(%d) tracks the interpreter" x)
      (Mini.Front.call pp "spec" [| Int x |])
      (Mini.Front.call p "spec" [| Int x |])
  in
  (* warm up on the passing side: promote + compile *)
  for i = 1 to 8 do
    chk i
  done;
  let m = Mini.Front.find_function p "spec" in
  check_bool "compiled after warmup" true
    (match m.mtier with Tier_compiled _ -> true | _ -> false);
  (* hammer the failing side: every call misses the speculation guard *)
  for i = 1 to 40 do
    chk (200_000 + i)
  done;
  let s = G.stats gov in
  check_bool "demoted at K strikes" true (s.G.g_demotions >= 1);
  check_bool "re-promoted after the backoff bar" true (s.G.g_repromotions >= 1);
  check_int "backoff exhausted exactly once" 1 s.G.g_blacklists;
  check_bool "permanently blacklisted" true (m.mtier = Tier_blacklisted);
  (* still correct on the interpreter after retirement *)
  chk 7;
  chk 300_000;
  let report = Lancet.Explain.why_report rt in
  check_bool "why shows the demotion" true
    (Vm.Strutil.contains report "demoted to interpreter");
  check_bool "why shows the breaker" true
    (Vm.Strutil.contains report "governor: deopt-loop breaker");
  check_bool "why shows the deopt storm" true
    (Vm.Strutil.contains report "deopt storm");
  G.detach gov;
  check_bool "detach clears the deopt hook" true
    (rt.tiering.t_on_deopt = None && rt.tiering.t_promote_gate = None);
  Forensics.disable ()

(* ------------------------------------------------------------------ *)
(* Compile watchdog: a stalled compile is abandoned via the generation
   stamp (the mutator never waits), retried once, then blacklisted.     *)

let test_watchdog () =
  Forensics.enable ();
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let started = Atomic.make 0 in
  let release = Atomic.make 0 in
  let pool =
    Bgjit.create ~threads:1 ?log:quiet
      ~compile:(fun rt m ->
        let my = 1 + Atomic.fetch_and_add started 1 in
        while Atomic.get release < my do
          Unix.sleepf 0.002
        done;
        Lancet.Tiering.compile rt m)
      rt
  in
  let gov =
    G.attach ~cfg:{ G.default_config with G.g_watchdog_ms = 30.0 } ~pool rt
  in
  let p = Mini.Front.load rt hot_src in
  let m = Mini.Front.find_function p "hot" in
  check_bool "queued" true (Bgjit.enqueue pool m = `Queued);
  await ~what:"first compile to start" (fun () -> Atomic.get started = 1);
  await ~what:"compile to overrun its budget" (fun () ->
      List.exists (fun (_, a) -> a *. 1000. > 40.) (Bgjit.inflight_ages pool));
  G.tick gov;
  let s = G.stats gov in
  check_int "first overrun killed" 1 s.G.g_watchdog_kills;
  check_int "and retried" 1 s.G.g_watchdog_retries;
  (* let the stalled compile finish: its result is stale by construction *)
  Atomic.set release 1;
  await ~what:"retry to start" (fun () -> Atomic.get started = 2);
  await ~what:"retry to overrun its budget" (fun () ->
      List.exists (fun (_, a) -> a *. 1000. > 40.) (Bgjit.inflight_ages pool));
  G.tick gov;
  let s = G.stats gov in
  check_int "second overrun killed" 2 s.G.g_watchdog_kills;
  check_int "no second retry" 1 s.G.g_watchdog_retries;
  check_int "blacklisted instead" 1 s.G.g_blacklists;
  check_bool "method retired" true (m.mtier = Tier_blacklisted);
  Atomic.set release 2;
  Bgjit.drain pool;
  Bgjit.shutdown pool;
  let bs = Bgjit.stats pool in
  check_bool "stalled results discarded, never installed" true
    (bs.Bgjit.s_installed = 0 && bs.Bgjit.s_stale >= 1);
  (* the mutator kept its hands clean throughout: still correct *)
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain hot_src in
  check_value "interpreted result after retirement"
    (Mini.Front.call pp "hot" [| Int 50; Int 3 |])
    (Mini.Front.call p "hot" [| Int 50; Int 3 |]);
  let report = Lancet.Explain.why_report rt in
  check_bool "why shows the watchdog kill" true
    (Vm.Strutil.contains report "watchdog");
  G.detach gov;
  Forensics.disable ()

(* ------------------------------------------------------------------ *)
(* Queue backpressure: sustained drops raise the promotion threshold
   (doubling, capped); a quiet queue decays it back to base.            *)

let four_src =
  {|
def qa(n: int): int = n * 2 + 1
def qb(n: int): int = n * 3 + 1
def qc(n: int): int = n * 5 + 1
def qd(n: int): int = n * 7 + 1
|}

let test_backpressure () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let pool =
    Bgjit.create ~threads:1 ~queue:1 ?log:quiet
      ~compile:(fun rt m ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Unix.sleepf 0.002
        done;
        Lancet.Tiering.compile rt m)
      rt
  in
  let gov =
    G.attach
      ~cfg:
        {
          G.default_config with
          G.g_drop_window = 2;
          G.g_watchdog_ms = 1e9 (* keep the watchdog out of this test *);
        }
      ~pool rt
  in
  let p = Mini.Front.load rt four_src in
  let find n = Mini.Front.find_function p n in
  let ma = find "qa" and mb = find "qb" and mc = find "qc" and md = find "qd" in
  check_bool "qa queued (held in flight)" true (Bgjit.enqueue pool ma = `Queued);
  await ~what:"worker to pick up qa" (fun () -> Atomic.get started);
  check_bool "qb fills the queue" true (Bgjit.enqueue pool mb = `Queued);
  mc.mtier <- Tier_compiling;
  check_bool "qc dropped" true (Bgjit.enqueue pool mc = `Dropped);
  md.mtier <- Tier_compiling;
  check_bool "qd dropped" true (Bgjit.enqueue pool md = `Dropped);
  G.tick gov;
  check_int "threshold doubled under pressure" 8 rt.tiering.t_threshold;
  check_int "throttle-up counted" 1 (G.stats gov).G.g_throttle_ups;
  Atomic.set release true;
  Bgjit.drain pool;
  G.tick gov;
  check_int "threshold decays once the queue is quiet" 4
    rt.tiering.t_threshold;
  check_int "throttle-down counted" 1 (G.stats gov).G.g_throttle_downs;
  Bgjit.shutdown pool;
  G.detach gov

(* ------------------------------------------------------------------ *)
(* Eviction damping: an eviction spike over one tick raises the
   promotion threshold (hysteresis against cache thrash).               *)

let test_eviction_damping () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let gov = G.attach ~cfg:{ G.default_config with G.g_evict_window = 2 } rt in
  G.tick gov;
  check_int "no spike, no change" 4 rt.tiering.t_threshold;
  rt.tiering.t_evictions <- rt.tiering.t_evictions + 2;
  G.tick gov;
  check_int "spike doubles the threshold" 8 rt.tiering.t_threshold;
  check_int "throttle-up counted" 1 (G.stats gov).G.g_throttle_ups;
  G.detach gov

(* ------------------------------------------------------------------ *)
(* Bounded shutdown: a wedged worker cannot hang exit — the deadline
   expires, pending requests are abandoned (counted + returned to the
   interpreter) and the stuck domain is left behind for process exit.   *)

let test_bounded_shutdown () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let pool =
    Bgjit.create ~threads:1 ?log:quiet
      ~compile:(fun rt m ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Unix.sleepf 0.005
        done;
        Lancet.Tiering.compile rt m)
      rt
  in
  let p = Mini.Front.load rt four_src in
  let ma = Mini.Front.find_function p "qa" in
  let mb = Mini.Front.find_function p "qb" in
  check_bool "qa queued" true (Bgjit.enqueue pool ma = `Queued);
  await ~what:"worker to wedge on qa" (fun () -> Atomic.get started);
  check_bool "qb queued behind the wedge" true (Bgjit.enqueue pool mb = `Queued);
  let t0 = Unix.gettimeofday () in
  Bgjit.shutdown ~timeout_ms:200 pool;
  let dt = Unix.gettimeofday () -. t0 in
  check_bool "shutdown returned within the deadline" true (dt < 5.0);
  check_int "pending request abandoned" 1 (Bgjit.stats pool).Bgjit.s_abandoned;
  check_bool "abandoned method back on the interpreter" true
    (mb.mtier = Tier_cold);
  (* unwedge the leaked worker so it exits instead of sleeping forever *)
  Atomic.set release true

(* ------------------------------------------------------------------ *)
(* Eviction round trip under pressure: with a one-slot code cache two
   alternating hot methods keep evicting each other, results stay equal
   to the interpreter, and the evict -> re-promote chain is visible in
   the why report.                                                      *)

let two_src =
  {|
def ea(n: int): int = {
  var acc = 1;
  var i = 0;
  while (i < n) {
    acc = (acc * 31 + i) % 1000003;
    i = i + 1
  };
  acc
}
def eb(n: int): int = {
  var acc = 2;
  var i = 0;
  while (i < n) {
    acc = (acc * 29 + i) % 1000003;
    i = i + 1
  };
  acc
}
|}

let test_evict_repromote () =
  Forensics.enable ();
  let rt =
    Lancet.Api.boot ~tiering:true ~tier_threshold:4 ~tier_cache_size:1 ()
  in
  let p = Mini.Front.load rt two_src in
  let plain = Vm.Natives.boot () in
  let pp = Mini.Front.load plain two_src in
  for i = 1 to 30 do
    List.iter
      (fun f ->
        check_value
          (Printf.sprintf "%s(%d) survives eviction churn" f i)
          (Mini.Front.call pp f [| Int (20 + i) |])
          (Mini.Front.call p f [| Int (20 + i) |]))
      [ "ea"; "eb" ]
  done;
  check_bool "cache pressure evicted" true (rt.tiering.t_evictions > 0);
  check_bool "evicted methods recompiled" true (rt.tiering.t_compiles > 2);
  let report = Lancet.Explain.why_report rt in
  check_bool "why shows the eviction" true
    (Vm.Strutil.contains report "evicted from code cache");
  check_bool "why shows the re-promotion" true
    (Vm.Strutil.contains report "promote");
  Forensics.disable ()

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "circuit-breaker" `Quick test_circuit_breaker;
    Alcotest.test_case "watchdog" `Quick test_watchdog;
    Alcotest.test_case "backpressure" `Quick test_backpressure;
    Alcotest.test_case "eviction-damping" `Quick test_eviction_damping;
    Alcotest.test_case "bounded-shutdown" `Quick test_bounded_shutdown;
    Alcotest.test_case "evict-repromote" `Quick test_evict_repromote;
  ]
