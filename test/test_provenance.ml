(* Source-level provenance: line tables from the Mini front-end through the
   assembler, provenance on staged IR nodes (surviving CSE and DCE), the
   sampling profiler's folded-stack output and the `lancet explain` view. *)

open Vm.Types
module A = Vm.Assembler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let value = Alcotest.testable Vm.Value.pp Vm.Value.equal
let check_value = Alcotest.check value

(* ------------------------------------------------------------------ *)
(* Line tables                                                         *)

(* Assembler level: [set_line] stamps emitted instructions; branch patching
   rewrites instructions in place, so the table needs no fixup. *)
let test_assembler_lines () =
  let rt = Vm.Natives.boot () in
  let cls = Vm.Classfile.declare_class rt ~name:"P" ~fields:[] () in
  let m =
    A.define_method ~src:"p.src" rt cls ~name:"f" ~static:true ~nargs:1
      (fun b ->
        let l = A.new_label b in
        A.set_line b 10;
        A.emit b (Load 0);
        A.ifz b Le l;
        A.set_line b 12;
        A.emit b (Const (Int 1));
        A.emit b Retv;
        A.place b l;
        A.set_line b 13;
        A.emit b (Const (Int 0));
        A.emit b Retv)
  in
  check_value "f(5)" (Int 1) (Vm.Interp.call rt m [| Int 5 |]);
  check_value "f(-1)" (Int 0) (Vm.Interp.call rt m [| Int 0 |]);
  let code = match m.mcode with Bytecode c -> c | Native _ -> [||] in
  check_int "line table parallel to code" (Array.length code)
    (Array.length m.mlines);
  check_int "pc 0" 10 (Vm.Runtime.line_at m 0);
  check_int "pc 1 (patched branch keeps its line)" 10 (Vm.Runtime.line_at m 1);
  check_int "pc 2" 12 (Vm.Runtime.line_at m 2);
  check_int "pc 4" 13 (Vm.Runtime.line_at m 4);
  check_int "out of range is unknown" 0 (Vm.Runtime.line_at m 99);
  check_string "msrc stored" "p.src" m.msrc;
  check_int "defining line" 10 (Vm.Runtime.meth_def_line m);
  check_string "meth_loc" "P.f @pc 2 (p.src:12)" (Vm.Runtime.meth_loc m 2)

let lines_src = {|def add(a: int, b: int): int = {
  val s = a + b;
  s * 2
}
|}

(* Mini front-end: codegen stamps every instruction with the source line of
   the expression it implements. *)
let test_mini_lines () =
  let rt = Vm.Natives.boot () in
  let p = Mini.Front.load ~file:"add.mini" rt lines_src in
  let m = Mini.Front.find_function p "add" in
  let code = match m.mcode with Bytecode c -> c | Native _ -> [||] in
  check_int "line table parallel to code" (Array.length code)
    (Array.length m.mlines);
  check_string "msrc is the load file" "add.mini" m.msrc;
  check_bool "every pc attributed" true
    (Array.for_all (fun l -> l >= 1 && l <= 4) m.mlines);
  let has l = Array.exists (( = ) l) m.mlines in
  check_bool "line 2 present (val s = a + b)" true (has 2);
  check_bool "line 3 present (s * 2)" true (has 3);
  check_value "still computes" (Int 14) (Mini.Front.call p "add" [| Int 3; Int 4 |])

(* Default source name when no file is given. *)
let test_default_src () =
  let rt = Vm.Natives.boot () in
  let p = Mini.Front.load rt lines_src in
  let m = Mini.Front.find_function p "add" in
  check_string "default msrc" "<mini>" m.msrc

(* ------------------------------------------------------------------ *)
(* IR provenance                                                       *)

module B = Lms.Builder
module Ir = Lms.Ir

let prov mid pc line = Some { Ir.pv_mid = mid; pv_pc = pc; pv_line = line }

(* CSE dedups to the first node — and keeps the first node's provenance;
   DCE is a filter, so surviving nodes keep theirs. *)
let test_prov_cse_dce () =
  let b = B.create ~nparams:1 () in
  let p0 = B.param b 0 Ir.Tint in
  B.set_prov b (prov 7 1 5);
  let s1 = B.iop b Add p0 p0 in
  B.set_prov b (prov 7 9 6);
  let s2 = B.iop b Add p0 p0 in
  check_int "CSE dedups the pure op" s1 s2;
  let g = B.graph b in
  (match (Ir.node g s1).Ir.prov with
  | Some pv ->
    check_int "first provenance wins: pc" 1 pv.Ir.pv_pc;
    check_int "first provenance wins: line" 5 pv.Ir.pv_line
  | None -> Alcotest.fail "CSE'd node lost its provenance");
  B.set_prov b (prov 7 2 8);
  let dead = B.iop b Sub s1 p0 in
  B.set_prov b (prov 7 3 9);
  let live = B.iop b Mul s1 p0 in
  B.ret b live;
  Ir.dead_code_elim g;
  let body = Ir.body_in_order (Ir.block g g.Ir.entry) in
  check_bool "dead node removed" true
    (not (List.exists (fun n -> n.Ir.id = dead) body));
  (match List.find_opt (fun n -> n.Ir.id = live) body with
  | Some n -> (
    match n.Ir.prov with
    | Some pv -> check_int "survivor keeps provenance" 9 pv.Ir.pv_line
    | None -> Alcotest.fail "survivor lost provenance")
  | None -> Alcotest.fail "live node eliminated")

(* End-to-end: staging a Mini method attributes every body node to it. *)
let test_prov_stage () =
  let rt = Lancet.Api.boot () in
  let p =
    Mini.Front.load ~file:"g.mini" rt
      "def g(a: int, b: int): int = a * b + a\n"
  in
  let m = Mini.Front.find_function p "g" in
  let g =
    Lancet.Compiler.stage rt m [| Lancet.Compiler.Dyn; Lancet.Compiler.Dyn |]
  in
  let nodes = ref 0 in
  List.iter
    (fun blk ->
      List.iter
        (fun n ->
          match n.Ir.op with
          | Ir.Bparam -> ()
          | _ -> (
            incr nodes;
            match n.Ir.prov with
            | Some pv ->
              check_int "provenance names the staged method" m.mid pv.Ir.pv_mid;
              check_bool "provenance carries a source line" true
                (pv.Ir.pv_line >= 1)
            | None -> Alcotest.fail "staged node without provenance"))
        (Ir.body_in_order blk))
    (Ir.reachable_blocks g);
  check_bool "staged some nodes" true (!nodes > 0)

(* ------------------------------------------------------------------ *)
(* Sampling profiler                                                   *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_profiler_kmeans () =
  let src = read_file "../examples/kmeans.mini" in
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:8 () in
  let p = Mini.Front.load ~file:"kmeans.mini" rt src in
  let prof = Profiler.create ~interval_ms:0.2 () in
  Profiler.profiled prof (fun () ->
      let i = ref 0 in
      while prof.Profiler.samples < 10 && !i < 50 do
        incr i;
        ignore (Mini.Front.call p "main" [||])
      done);
  check_bool "took stack samples" true (prof.Profiler.samples > 0);
  check_bool "line coverage >= 90%" true (Profiler.coverage prof >= 0.9);
  let folded = Profiler.folded prof in
  check_bool "folded stacks mention main" true
    (Util.contains_sub folded "main");
  check_bool "folded frames carry line numbers" true
    (Util.contains_sub folded ":");
  check_bool "sampling stopped on exit" false !Obs.sampling

(* ------------------------------------------------------------------ *)
(* lancet explain                                                      *)

let spec_src =
  "def spec(x: int): int =\n\
  \  if (Lancet.speculate(x < 1000)) x * 3 + 1 else x - 7\n"

let test_explain () =
  let rt = Lancet.Api.boot ~tiering:true ~tier_threshold:4 () in
  let x = Lancet.Explain.create () in
  Obs.with_sink (Lancet.Explain.sink x) (fun () ->
      let p = Mini.Front.load ~file:"spec.mini" rt spec_src in
      for i = 1 to 40 do
        (* every 10th call breaks the speculation: 4 deopts, deterministic *)
        let xv = if i mod 10 = 0 then 100_000 + i else i in
        ignore (Mini.Front.call p "spec" [| Int xv |])
      done);
  let out = Lancet.Explain.render ~timings:false x rt ~src:spec_src in
  check_bool "promotion annotated" true
    (Util.contains_sub out "promoted to tier 1");
  check_bool "compilation annotated" true (Util.contains_sub out "compiled");
  check_bool "deopt count annotated" true (Util.contains_sub out "deopt x4");
  check_bool "deopt tag annotated" true (Util.contains_sub out "speculate");
  check_bool "everything attributed to a line" false
    (Util.contains_sub out "not attributed");
  (* the deopt annotation sits directly under the speculate source line *)
  let lines = String.split_on_char '\n' out in
  let rec find i = function
    | [] -> -1
    | l :: tl ->
      if Util.contains_sub l "Lancet.speculate" then i else find (i + 1) tl
  in
  let idx = find 0 lines in
  check_bool "speculate line rendered" true (idx >= 0);
  let annotated =
    List.filteri (fun i _ -> i > idx && i <= idx + 6) lines
    |> List.exists (fun l -> Util.contains_sub l "deopt x")
  in
  check_bool "deopt annotated at the speculate line" true annotated

let suite =
  [
    Alcotest.test_case "assembler line table" `Quick test_assembler_lines;
    Alcotest.test_case "mini line table" `Quick test_mini_lines;
    Alcotest.test_case "default source name" `Quick test_default_src;
    Alcotest.test_case "prov survives CSE and DCE" `Quick test_prov_cse_dce;
    Alcotest.test_case "prov through staging" `Quick test_prov_stage;
    Alcotest.test_case "profiler on kmeans" `Quick test_profiler_kmeans;
    Alcotest.test_case "explain annotates source" `Quick test_explain;
  ]
